//! The DCDB Pusher (paper §IV-A, Fig. 3).
//!
//! "Pushers perform the sampling of sensors on monitored components,
//! using a plugin-based architecture ... All collected data is sent via
//! the MQTT protocol to Collect Agents." With Wintermute embedded, the
//! Pusher also hosts an Operator Manager whose operators see the
//! locally-sampled sensors through the local sensor caches — "optimal
//! for runtime models requiring data liveness, low latency and
//! horizontal scalability" (§IV-B a).
//!
//! The Pusher is tick-driven: each [`Pusher::tick`] samples every due
//! monitoring plugin, stores readings in the local caches, hands them
//! to the supervised delivery layer (see [`crate::delivery`]), then
//! runs due Wintermute operators. Production deployments drive ticks
//! from a wall-clock thread; simulations from a virtual clock.
//!
//! Fault isolation mirrors the operator runtime: a failing monitoring
//! plugin is counted (`sample_errors`), never aborts the tick, and is
//! quarantined with interval backoff after
//! [`FaultPolicy::quarantine_threshold`] consecutive failures — the
//! remaining plugins and the operator tick keep running. Publishes are
//! batched per topic and routed through a [`BusConnection`], which
//! spools refused readings and drains them oldest-first on recovery.

use crate::delivery::{BusConnection, ConnectionState, DeliveryConfig, DeliveryMetricsSnapshot};
use crate::plugins::MonitoringPlugin;
use dcdb_bus::{BusHandle, MessageBus};
use dcdb_common::error::Result;
use dcdb_common::reading::SensorReading;
use dcdb_common::time::Timestamp;
use dcdb_common::topic::Topic;
use dcdb_rest::Router;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use wintermute::prelude::*;

/// Pusher configuration.
#[derive(Debug, Clone)]
pub struct PusherConfig {
    /// Sampling interval for monitoring plugins, milliseconds.
    pub sampling_interval_ms: u64,
    /// Sensor cache window, seconds (paper default: 180 s).
    pub cache_secs: u64,
    /// Publish samples on the MQTT bus (disable for overhead baselines).
    pub publish: bool,
    /// Delivery-layer policy: reconnect backoff and the
    /// store-and-forward spool.
    pub delivery: DeliveryConfig,
    /// Fault policy for monitoring plugins (quarantine threshold and
    /// backoff cap, mirroring the operator runtime's semantics).
    pub plugin_fault: FaultPolicy,
}

impl Default for PusherConfig {
    fn default() -> Self {
        PusherConfig {
            sampling_interval_ms: 1000,
            cache_secs: 180,
            publish: true,
            delivery: DeliveryConfig::default(),
            plugin_fault: FaultPolicy::default(),
        }
    }
}

struct PluginSlot {
    name: String,
    plugin: Mutex<Box<dyn MonitoringPlugin>>,
    next_due: AtomicU64,
    sample_errors: AtomicU64,
    consecutive_failures: AtomicU64,
    quarantined: AtomicBool,
    /// Current quarantine backoff, in sampling intervals (doubles per
    /// failed probe up to the policy's cap).
    backoff_intervals: AtomicU64,
}

/// Per-plugin health metrics, as returned by [`Pusher::plugin_metrics`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PluginMetricsSnapshot {
    /// Plugin name.
    pub name: String,
    /// Total failed sample calls.
    pub sample_errors: u64,
    /// Consecutive failures right now (0 after any success).
    pub consecutive_failures: u64,
    /// Whether the plugin is quarantined (probed at backoff cadence
    /// instead of every interval).
    pub quarantined: bool,
    /// Current probe backoff, in sampling intervals.
    pub backoff_intervals: u64,
}

/// Counters for the footprint experiments and the delivery accounting
/// identity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PusherStats {
    /// Readings sampled from monitoring plugins.
    pub sampled: u64,
    /// Readings published to the bus (fresh and spool-drained alike).
    pub published: u64,
    /// Publish attempts the bus refused (transient count — refused
    /// readings are spooled, so this is diagnostic, not loss).
    pub publish_errors: u64,
    /// Failed monitoring-plugin sample calls.
    pub sample_errors: u64,
    /// Monitoring plugins currently quarantined.
    pub quarantined_plugins: u64,
    /// Readings currently parked in the store-and-forward spool.
    pub spooled_pending: u64,
    /// Readings lost at the spool (evicted or refused at capacity).
    pub spool_dropped: u64,
    /// Readings lost outright: the bus refused and the spool could not
    /// hold them (spool disabled).
    pub publish_errors_final: u64,
    /// Readings sampled while publishing was disabled or no bus was
    /// attached (cache-only operation).
    pub unpublished: u64,
    /// Successful reconnects of the bus connection.
    pub reconnects: u64,
}

impl PusherStats {
    /// The delivery accounting identity: every sampled reading is
    /// published, parked in the spool, dropped at the spool, lost as a
    /// final publish error, or (with publishing disabled) deliberately
    /// unpublished. Holds exactly at tick boundaries.
    pub fn delivery_conserved(&self) -> bool {
        self.sampled
            == self.published
                + self.spooled_pending
                + self.spool_dropped
                + self.publish_errors_final
                + self.unpublished
    }
}

/// One DCDB Pusher instance.
pub struct Pusher {
    config: PusherConfig,
    plugins: Vec<PluginSlot>,
    manager: Arc<OperatorManager>,
    connection: Option<Mutex<BusConnection>>,
    sampled: AtomicU64,
    published: AtomicU64,
    publish_errors: AtomicU64,
    sample_errors: AtomicU64,
    spool_dropped: AtomicU64,
    publish_errors_final: AtomicU64,
    unpublished: AtomicU64,
}

impl Pusher {
    /// Creates a Pusher with its own cache-only Query Engine (no
    /// storage: Pushers only see local data).
    pub fn new(config: PusherConfig, bus: Option<BusHandle>) -> Pusher {
        let bus: Option<Arc<dyn MessageBus>> =
            bus.map(|handle| Arc::new(handle) as Arc<dyn MessageBus>);
        Pusher::with_bus(config, bus)
    }

    /// Creates a Pusher over any [`MessageBus`] — the production
    /// [`BusHandle`] or a fault-injecting
    /// [`ChaosBus`](dcdb_bus::ChaosBus).
    pub fn with_bus(config: PusherConfig, bus: Option<Arc<dyn MessageBus>>) -> Pusher {
        let cache_slots =
            (config.cache_secs * 1000 / config.sampling_interval_ms.max(1)).max(2) as usize + 1;
        let query = Arc::new(QueryEngine::new(cache_slots));
        let manager = OperatorManager::new(query);
        let connection = bus.map(|bus| Mutex::new(BusConnection::new(bus, config.delivery)));
        Pusher {
            config,
            plugins: Vec::new(),
            manager,
            connection,
            sampled: AtomicU64::new(0),
            published: AtomicU64::new(0),
            publish_errors: AtomicU64::new(0),
            sample_errors: AtomicU64::new(0),
            spool_dropped: AtomicU64::new(0),
            publish_errors_final: AtomicU64::new(0),
            unpublished: AtomicU64::new(0),
        }
    }

    /// The embedded Wintermute manager (register and load operator
    /// plugins through it).
    pub fn manager(&self) -> &Arc<OperatorManager> {
        &self.manager
    }

    /// The local query engine (sensor caches).
    pub fn query_engine(&self) -> &Arc<QueryEngine> {
        self.manager.query_engine()
    }

    /// Adds a monitoring plugin and extends the sensor tree with its
    /// topics.
    pub fn add_monitoring_plugin(&mut self, plugin: Box<dyn MonitoringPlugin>) {
        // Prime caches so the navigator knows the sensors before the
        // first sample (operators may be configured before data flows).
        for topic in plugin.sensor_topics() {
            // Touching the engine creates the cache without data.
            let _ = self.query_engine().knows(&topic);
        }
        self.plugins.push(PluginSlot {
            name: plugin.name().to_string(),
            plugin: Mutex::new(plugin),
            next_due: AtomicU64::new(0),
            sample_errors: AtomicU64::new(0),
            consecutive_failures: AtomicU64::new(0),
            quarantined: AtomicBool::new(false),
            backoff_intervals: AtomicU64::new(1),
        });
    }

    /// Rebuilds the navigator from all declared sensors. Call after
    /// adding monitoring plugins and before loading operator plugins.
    pub fn refresh_sensor_tree(&self) {
        let mut topics = Vec::new();
        for slot in &self.plugins {
            topics.extend(slot.plugin.lock().sensor_topics());
        }
        // Include any derived sensors already cached.
        let nav_topics: Vec<_> = topics.iter().collect();
        self.query_engine()
            .set_navigator(SensorNavigator::build(nav_topics));
    }

    /// Handles one plugin's sample failure: count it, and after the
    /// fault policy's threshold quarantine the plugin — its next probe
    /// is pushed out by a per-failure-doubling number of intervals
    /// (capped), so a dead data source costs one attempt per backoff
    /// window instead of one per tick. A later successful sample clears
    /// the quarantine.
    fn note_sample_failure(&self, slot: &PluginSlot, now: Timestamp, interval_ns: u64) {
        slot.sample_errors.fetch_add(1, Ordering::Relaxed);
        self.sample_errors.fetch_add(1, Ordering::Relaxed);
        let consecutive = slot.consecutive_failures.fetch_add(1, Ordering::AcqRel) + 1;
        let policy = self.config.plugin_fault;
        if consecutive >= policy.quarantine_threshold.max(1) {
            let backoff = if slot.quarantined.swap(true, Ordering::AcqRel) {
                // Already quarantined: this was a failed probe; double
                // the backoff up to the cap.
                let prev = slot.backoff_intervals.load(Ordering::Acquire);
                let next = (prev * 2).min(policy.backoff_cap.max(1));
                slot.backoff_intervals.store(next, Ordering::Release);
                next
            } else {
                let first = 2u64.min(policy.backoff_cap.max(1));
                slot.backoff_intervals.store(first, Ordering::Release);
                first
            };
            slot.next_due
                .store(now.as_nanos() + backoff * interval_ns, Ordering::Release);
        }
    }

    /// One tick: sample due monitoring plugins (isolating failures),
    /// cache their readings, deliver them in per-topic batches through
    /// the supervised connection, then run due Wintermute operators.
    pub fn tick(&self, now: Timestamp) -> Result<TickReport> {
        let interval_ns = self.config.sampling_interval_ms * 1_000_000;
        // Per-topic batches accumulated across every due plugin this
        // tick; publish order follows sampling order.
        let mut batches: Vec<(Topic, Vec<SensorReading>)> = Vec::new();
        for slot in &self.plugins {
            let due = slot.next_due.load(Ordering::Acquire);
            if due > now.as_nanos() {
                continue;
            }
            let mut next = if due == 0 { now.as_nanos() } else { due };
            while next <= now.as_nanos() {
                next += interval_ns;
            }
            slot.next_due.store(next, Ordering::Release);

            // One dead plugin must not cost the other plugins their
            // samples or the operator tick: count, quarantine, carry
            // on.
            let samples = match slot.plugin.lock().sample(now) {
                Ok(samples) => samples,
                Err(_) => {
                    self.note_sample_failure(slot, now, interval_ns);
                    continue;
                }
            };
            if slot.consecutive_failures.swap(0, Ordering::AcqRel) > 0 {
                slot.quarantined.store(false, Ordering::Release);
                slot.backoff_intervals.store(1, Ordering::Release);
            }
            self.sampled
                .fetch_add(samples.len() as u64, Ordering::Relaxed);
            for (topic, reading) in &samples {
                self.query_engine().insert(topic, *reading);
            }
            if self.config.publish && self.connection.is_some() {
                for (topic, reading) in samples {
                    match batches.iter_mut().find(|(t, _)| *t == topic) {
                        Some((_, readings)) => readings.push(reading),
                        None => batches.push((topic, vec![reading])),
                    }
                }
            } else {
                self.unpublished
                    .fetch_add(samples.len() as u64, Ordering::Relaxed);
            }
        }

        if let Some(connection) = &self.connection {
            if self.config.publish && !batches.is_empty() {
                let out = connection.lock().deliver(now, batches);
                self.published.fetch_add(out.published, Ordering::Relaxed);
                self.publish_errors
                    .fetch_add(out.refused_attempts, Ordering::Relaxed);
                self.spool_dropped
                    .fetch_add(out.spool_dropped, Ordering::Relaxed);
                self.publish_errors_final
                    .fetch_add(out.final_errors, Ordering::Relaxed);
            }
        }
        Ok(self.manager.tick(now))
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PusherStats {
        let (spooled_pending, reconnects) = match &self.connection {
            Some(connection) => {
                let conn = connection.lock();
                (conn.spool_depth() as u64, conn.metrics().reconnects)
            }
            None => (0, 0),
        };
        PusherStats {
            sampled: self.sampled.load(Ordering::Relaxed),
            published: self.published.load(Ordering::Relaxed),
            publish_errors: self.publish_errors.load(Ordering::Relaxed),
            sample_errors: self.sample_errors.load(Ordering::Relaxed),
            quarantined_plugins: self
                .plugins
                .iter()
                .filter(|slot| slot.quarantined.load(Ordering::Acquire))
                .count() as u64,
            spooled_pending,
            spool_dropped: self.spool_dropped.load(Ordering::Relaxed),
            publish_errors_final: self.publish_errors_final.load(Ordering::Relaxed),
            unpublished: self.unpublished.load(Ordering::Relaxed),
            reconnects,
        }
    }

    /// Delivery-layer metrics: connection state, reconnect counters,
    /// backoff, time-in-state, spool depth and drop counters. `None`
    /// for bus-less pushers.
    pub fn delivery_metrics(&self) -> Option<DeliveryMetricsSnapshot> {
        self.connection
            .as_ref()
            .map(|connection| connection.lock().metrics())
    }

    /// Current connection state (`None` for bus-less pushers).
    pub fn connection_state(&self) -> Option<ConnectionState> {
        self.connection
            .as_ref()
            .map(|connection| connection.lock().state())
    }

    /// Per-plugin health: sample errors, consecutive failures,
    /// quarantine state and probe backoff.
    pub fn plugin_metrics(&self) -> Vec<PluginMetricsSnapshot> {
        self.plugins
            .iter()
            .map(|slot| PluginMetricsSnapshot {
                name: slot.name.clone(),
                sample_errors: slot.sample_errors.load(Ordering::Relaxed),
                consecutive_failures: slot.consecutive_failures.load(Ordering::Relaxed),
                quarantined: slot.quarantined.load(Ordering::Acquire),
                backoff_intervals: slot.backoff_intervals.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Mounts the Pusher's REST API (Wintermute management routes).
    pub fn mount_routes(&self, router: &mut Router) {
        self.manager.mount_routes(router);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delivery::{ReconnectConfig, SpoolConfig};
    use crate::plugins::{FlakyMonitoringPlugin, SimMonitoringPlugin, TesterMonitoringPlugin};
    use dcdb_bus::{Broker, ChaosBus, ChaosConfig, OverflowPolicy};
    use sim_cluster::{ClusterConfig, ClusterSimulator};

    fn t(s: &str) -> Topic {
        Topic::parse(s).unwrap()
    }

    fn sim_pusher(publish: bool) -> (Pusher, Broker) {
        let broker = Broker::new_sync();
        let sim = Arc::new(Mutex::new(ClusterSimulator::new(
            ClusterConfig::small_manual(7),
        )));
        let mut pusher = Pusher::new(
            PusherConfig {
                sampling_interval_ms: 1000,
                cache_secs: 60,
                publish,
                ..PusherConfig::default()
            },
            Some(broker.handle()),
        );
        pusher.add_monitoring_plugin(Box::new(SimMonitoringPlugin::new(sim, 0)));
        pusher.refresh_sensor_tree();
        (pusher, broker)
    }

    #[test]
    fn tick_samples_and_publishes() {
        let (pusher, broker) = sim_pusher(true);
        let sub = broker.handle().subscribe_str("/#").unwrap();
        pusher.tick(Timestamp::from_secs(1)).unwrap();
        let stats = pusher.stats();
        assert_eq!(stats.sampled, 22); // 6 node-level + 16 core sensors
        assert_eq!(stats.published, 22);
        assert!(stats.delivery_conserved(), "{stats:?}");
        // Batched per topic: 22 readings over 22 distinct topics.
        assert_eq!(sub.queued(), 22);
        // Local cache has the data.
        let got = pusher
            .query_engine()
            .query(&t("/rack00/node00/power"), QueryMode::Latest);
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn publish_can_be_disabled() {
        let (pusher, broker) = sim_pusher(false);
        let sub = broker.handle().subscribe_str("/#").unwrap();
        pusher.tick(Timestamp::from_secs(1)).unwrap();
        let stats = pusher.stats();
        assert_eq!(stats.published, 0);
        assert_eq!(sub.queued(), 0);
        assert_eq!(stats.sampled, 22);
        assert_eq!(stats.unpublished, 22);
        assert!(stats.delivery_conserved(), "{stats:?}");
    }

    #[test]
    fn sampling_respects_interval() {
        let (pusher, _broker) = sim_pusher(true);
        pusher.tick(Timestamp::from_millis(1000)).unwrap();
        pusher.tick(Timestamp::from_millis(1500)).unwrap(); // not due
        assert_eq!(pusher.stats().sampled, 22);
        pusher.tick(Timestamp::from_millis(2100)).unwrap();
        assert_eq!(pusher.stats().sampled, 44);
    }

    #[test]
    fn wintermute_operators_run_on_local_data() {
        let (pusher, _broker) = sim_pusher(true);
        wintermute_plugins::register_all(pusher.manager(), None);
        pusher
            .manager()
            .load(
                PluginConfig::online("avg", "aggregator", 1000)
                    .with_patterns(&["<bottomup-1>power"], &["<bottomup-1>power-avg"])
                    .with_option("window_ms", 10_000u64),
            )
            .unwrap();
        for s in 1..=5u64 {
            let report = pusher.tick(Timestamp::from_secs(s)).unwrap();
            assert!(report.errors.is_empty(), "{:?}", report.errors);
        }
        let got = pusher
            .query_engine()
            .query(&t("/rack00/node00/power-avg"), QueryMode::Latest);
        assert!(!got.is_empty(), "operator output missing");
    }

    #[test]
    fn tester_plugin_in_pusher() {
        let broker = Broker::new_sync();
        let mut pusher = Pusher::new(PusherConfig::default(), Some(broker.handle()));
        pusher.add_monitoring_plugin(Box::new(
            TesterMonitoringPlugin::new(&t("/host/tester"), 100).unwrap(),
        ));
        pusher.refresh_sensor_tree();
        pusher.tick(Timestamp::from_secs(1)).unwrap();
        assert_eq!(pusher.stats().sampled, 100);
        assert_eq!(pusher.query_engine().navigator().sensor_count(), 100);
    }

    /// Regression: a failing plugin used to abort the tick via `?`,
    /// skipping every later plugin *and* the operator-manager tick.
    #[test]
    fn failing_plugin_does_not_abort_tick() {
        let broker = Broker::new_sync();
        let mut pusher = Pusher::new(
            PusherConfig {
                plugin_fault: FaultPolicy {
                    quarantine_threshold: 3,
                    backoff_cap: 8,
                },
                ..PusherConfig::default()
            },
            Some(broker.handle()),
        );
        // Order matters: the broken plugin sits *before* the healthy
        // one.
        pusher.add_monitoring_plugin(Box::new(FlakyMonitoringPlugin::always_failing(
            "dead-sensor",
            vec![t("/host/dead/value")],
        )));
        pusher.add_monitoring_plugin(Box::new(
            TesterMonitoringPlugin::new(&t("/host/tester"), 5).unwrap(),
        ));
        pusher.refresh_sensor_tree();

        for s in 1..=4u64 {
            let report = pusher.tick(Timestamp::from_secs(s));
            assert!(report.is_ok(), "tick must survive the dead plugin");
        }
        let stats = pusher.stats();
        // The healthy plugin sampled every tick.
        assert_eq!(stats.sampled, 20);
        assert_eq!(stats.published, 20);
        assert!(stats.delivery_conserved(), "{stats:?}");
        // The dead plugin was counted and quarantined after 3 strikes.
        assert_eq!(stats.quarantined_plugins, 1);
        let dead = pusher
            .plugin_metrics()
            .into_iter()
            .find(|p| p.name == "dead-sensor")
            .unwrap();
        assert!(dead.quarantined);
        assert_eq!(dead.sample_errors, 3, "backoff spaces out probes");
        assert!(dead.consecutive_failures >= 3);
    }

    #[test]
    fn quarantined_plugin_recovers_on_successful_probe() {
        let broker = Broker::new_sync();
        let mut pusher = Pusher::new(
            PusherConfig {
                plugin_fault: FaultPolicy {
                    quarantine_threshold: 2,
                    backoff_cap: 4,
                },
                ..PusherConfig::default()
            },
            Some(broker.handle()),
        );
        // Fails for the first 3 seconds of virtual time, then heals.
        let inner = TesterMonitoringPlugin::new(&t("/host/tester"), 2).unwrap();
        pusher.add_monitoring_plugin(Box::new(FlakyMonitoringPlugin::failing_until(
            Box::new(inner),
            Timestamp::from_secs(3),
        )));
        pusher.refresh_sensor_tree();

        // Drive well past the backoff windows.
        for s in 1..=20u64 {
            pusher.tick(Timestamp::from_secs(s)).unwrap();
        }
        let stats = pusher.stats();
        assert_eq!(stats.quarantined_plugins, 0, "recovered");
        assert!(stats.sampled > 0, "sampling resumed");
        let m = &pusher.plugin_metrics()[0];
        assert_eq!(m.consecutive_failures, 0);
        assert_eq!(m.backoff_intervals, 1);
        assert!(m.sample_errors >= 2);
    }

    #[test]
    fn outage_spools_and_recovers_without_loss() {
        let broker = Broker::new_sync();
        let chaos = ChaosBus::new(
            broker.handle(),
            // Outage covers ticks at 3 s and 4 s.
            ChaosConfig::quiet(11).with_outage_ms(2_500, 4_500),
        );
        let mut pusher = Pusher::with_bus(
            PusherConfig {
                delivery: DeliveryConfig {
                    reconnect: ReconnectConfig {
                        base_ms: 100,
                        jitter: 0.0,
                        ..ReconnectConfig::default()
                    },
                    spool: SpoolConfig {
                        per_topic_depth: 16,
                        policy: OverflowPolicy::DropOldest,
                    },
                },
                ..PusherConfig::default()
            },
            Some(Arc::new(chaos.clone())),
        );
        pusher.add_monitoring_plugin(Box::new(
            TesterMonitoringPlugin::new(&t("/host/tester"), 3).unwrap(),
        ));
        pusher.refresh_sensor_tree();
        let sub = broker.handle().subscribe_str("/host/#").unwrap();

        for s in 1..=6u64 {
            let now = Timestamp::from_secs(s);
            chaos.advance(now);
            pusher.tick(now).unwrap();
        }
        let stats = pusher.stats();
        assert_eq!(stats.sampled, 18);
        assert_eq!(stats.published, 18, "spool drained after the outage");
        assert_eq!(stats.spooled_pending, 0);
        assert_eq!(stats.spool_dropped, 0);
        assert_eq!(stats.publish_errors_final, 0);
        assert!(stats.publish_errors > 0, "the refusals were observed");
        assert!(stats.delivery_conserved(), "{stats:?}");
        // Per-topic timestamp order survived the outage.
        let mut last_ts_per_topic: std::collections::HashMap<String, u64> = Default::default();
        for msg in sub.drain() {
            for r in dcdb_bus::decode_readings(msg.payload).unwrap() {
                let last = last_ts_per_topic
                    .entry(msg.topic.as_str().to_string())
                    .or_insert(0);
                assert!(r.ts.as_nanos() > *last, "out of order on {}", msg.topic);
                *last = r.ts.as_nanos();
            }
        }
    }
}
