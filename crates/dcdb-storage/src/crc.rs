//! CRC-32 (IEEE 802.3 polynomial) used by the WAL and segment formats.
//!
//! Implemented locally so the hot-path storage crate stays free of
//! external dependencies; the tables are built at compile time.
//!
//! Uses slicing-by-8: eight derived tables let the hot loop consume
//! eight bytes per iteration instead of one, which matters because the
//! WAL checksums every ingested record — at 2 M readings/s that is
//! tens of megabytes of payload per second through this function.

const fn build_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        tables[0][i] = c;
        i += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = tables[0][(prev & 0xFF) as usize] ^ (prev >> 8);
            i += 1;
        }
        t += 1;
    }
    tables
}

static TABLES: [[u32; 256]; 8] = build_tables();

/// Computes the CRC-32 checksum of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ c;
        let hi = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
        c = TABLES[7][(lo & 0xFF) as usize]
            ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ TABLES[4][(lo >> 24) as usize]
            ^ TABLES[3][(hi & 0xFF) as usize]
            ^ TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        c = TABLES[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"the quick brown fox".to_vec();
        let base = crc32(&data);
        for i in 0..data.len() {
            let mut flipped = data.clone();
            flipped[i] ^= 0x40;
            assert_ne!(crc32(&flipped), base, "flip at byte {i} undetected");
        }
    }
}
